// Command instdb builds, inspects and verifies binary instance store
// files — the pre-generated ETC corpora gridschedd serves with
// -instdb and the load harness (cmd/loadgen) hammers.
//
// Usage:
//
//	instdb build -o corpus.gsdb [-suite] [-sizes 512x16,128x8] [name...]
//	instdb inspect corpus.gsdb
//	instdb verify [-regen] corpus.gsdb
//
// build generates the named benchmark instances ("u_c_hihi.0",
// optionally sized "u_c_hihi.0@128x8") and writes one store file;
// -suite expands to the paper's full 12-class benchmark at every
// -sizes dimension. inspect prints the corpus shape and contents.
// verify re-decodes the file and structurally validates every
// instance; with -regen it also regenerates each matrix from its
// class seed and requires bit-exact equality with the stored data.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"gridsched/internal/etc"
	"gridsched/internal/instdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("instdb: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "build":
		runBuild(os.Args[2:])
	case "inspect":
		runInspect(os.Args[2:])
	case "verify":
		runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  instdb build -o FILE [-suite] [-sizes TxM,...] [name...]   generate instances into a store file
  instdb inspect FILE                                        print corpus shape and contents
  instdb verify [-regen] FILE                                validate a store file`)
}

// runBuild assembles the instance name list (explicit names plus the
// optional -suite × -sizes expansion) and writes the store file.
func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output store file (required; written atomically)")
	suite := fs.Bool("suite", false, "include the full 12-class benchmark suite")
	sizes := fs.String("sizes", "", "comma-separated TxM dimensions for -suite (default: the benchmark's native 512x16)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("build: -o FILE is required")
	}

	names := append([]string(nil), fs.Args()...)
	if *suite {
		suffixes := []string{""}
		if *sizes != "" {
			suffixes = suffixes[:0]
			for _, sz := range strings.Split(*sizes, ",") {
				sz = strings.TrimSpace(sz)
				if sz == "" {
					continue
				}
				suffixes = append(suffixes, "@"+sz)
			}
		}
		for _, cl := range etc.AllClasses() {
			for _, suf := range suffixes {
				names = append(names, cl.Name()+suf)
			}
		}
	}
	if len(names) == 0 {
		log.Fatal("build: nothing to build — pass instance names and/or -suite")
	}
	sort.Strings(names)

	st, err := instdb.BuildFile(*out, names)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("wrote %s: %d instances, %d unique matrices, %d data bytes, %d file bytes\n",
		*out, st.Instances, st.UniqueMatrices, st.DataBytes, st.FileBytes)
}

// runInspect decodes the file and prints its shape and every instance
// record.
func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("inspect: exactly one FILE argument")
	}
	path := fs.Arg(0)
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("inspect: %v", err)
	}
	store, err := instdb.Decode(buf)
	if err != nil {
		log.Fatalf("inspect: %s: %v", path, err)
	}
	st := store.Stats()
	fmt.Printf("%s: format %s v%d, built %s\n", path, instdb.Magic, instdb.Version,
		st.BuildTime.UTC().Format("2006-01-02T15:04:05Z"))
	fmt.Printf("  %d instances, %d unique matrices, %d data bytes (%d file bytes)\n",
		st.Instances, st.UniqueMatrices, st.DataBytes, len(buf))
	for _, name := range store.Names() {
		in, _ := store.Get(name)
		fmt.Printf("  %-24s %4dx%-3d %s\n", name, in.T, in.M, in.ClassTag.Name())
	}
}

// runVerify decodes and validates the file; -regen additionally checks
// bit-exactness against on-demand generation.
func runVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	regen := fs.Bool("regen", false, "also regenerate every instance and require bit-exact equality")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("verify: exactly one FILE argument")
	}
	path := fs.Arg(0)
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	store, err := instdb.Decode(buf)
	if err != nil {
		log.Fatalf("verify: %s: decode: %v", path, err)
	}
	if err := store.Verify(*regen); err != nil {
		log.Fatalf("verify: %s: %v", path, err)
	}
	mode := "structural"
	if *regen {
		mode = "structural + bit-exact regeneration"
	}
	fmt.Printf("%s: OK (%d instances, %s)\n", path, store.Len(), mode)
}
