// Command benchguard gates CI on benchmark regressions: it parses
// `go test -bench` output (a file argument or stdin), compares every
// benchmark recorded in the checked-in baseline, and exits non-zero
// when one slowed beyond the threshold or disappeared from the run.
//
// Usage:
//
//	go test -run '^$' -bench '^Benchmark(IncrementalEval|FullRecomputeEval|EngineObserver|ETCLayout|H2LLCandidates|Makespan|Move|Portfolio|SolverThroughput|ServiceThroughput)' . | go run ./cmd/benchguard
//	go run ./cmd/benchguard -baseline BENCH_baseline.json bench.txt
//	go test -run '^$' -bench '...' . | go run ./cmd/benchguard -update
//	go test -run '^$' -bench '...' -benchtime 1x . | go run ./cmd/benchguard -names-only
//
// -update rewrites the baseline from the current run (keeping the
// configured threshold) instead of comparing; commit the result when a
// deliberate change moves the numbers.
//
// -require-all additionally fails when the run contains benchmarks the
// baseline does not know: a newly added guarded benchmark must land
// together with its baseline entry, or the guard would silently never
// hold it. -names-only checks exactly that name-set agreement — in both
// directions — while ignoring the timings; it is meant for
// `-benchtime 1x` smoke runs, whose single iteration measures nothing
// but still proves the guarded set and the baseline have not drifted
// apart.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"gridsched/internal/benchcmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or rewrite with -update)")
		threshold    = flag.Float64("threshold", 0, "relative slowdown that fails the guard (0 = baseline's own threshold, default 0.25)")
		update       = flag.Bool("update", false, "rewrite the baseline from the current run instead of comparing")
		requireAll   = flag.Bool("require-all", false, "also fail when the run contains benchmarks absent from the baseline")
		namesOnly    = flag.Bool("names-only", false, "check only that run and baseline cover the same benchmark names (implies -require-all, ignores timings; for -benchtime 1x smoke runs)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	current, err := benchcmp.Parse(in)
	if err != nil {
		log.Fatalf("parsing %s: %v", src, err)
	}

	if *update {
		updateBaseline(*baselinePath, *threshold, current)
		return
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		log.Fatalf("%v (run with -update to create it)", err)
	}
	base, err := benchcmp.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *namesOnly {
		if !compareNames(base, current) {
			log.Fatalf("benchmark name sets diverged from %s", *baselinePath)
		}
		fmt.Printf("benchmark guard passed: %d benchmark names match the baseline\n", len(current))
		return
	}

	results, ok := benchcmp.Compare(base, current, *threshold)
	for _, r := range results {
		switch {
		case r.Missing:
			fmt.Printf("MISSING  %-45s baseline %.4g ns/op, absent from this run\n", r.Name, r.Baseline)
		case r.Regressed:
			fmt.Printf("REGRESS  %-45s %.4g -> %.4g ns/op (%+.1f%%)\n", r.Name, r.Baseline, r.Current, 100*r.Delta)
		default:
			fmt.Printf("ok       %-45s %.4g -> %.4g ns/op (%+.1f%%)\n", r.Name, r.Baseline, r.Current, 100*r.Delta)
		}
	}
	if *requireAll {
		for _, name := range unknownNames(base, current) {
			fmt.Printf("UNKNOWN  %-45s %.4g ns/op in this run, absent from the baseline\n", name, current[name])
			ok = false
		}
	}
	if !ok {
		log.Fatalf("benchmark guard failed against %s", *baselinePath)
	}
	fmt.Printf("benchmark guard passed: %d benchmarks within threshold\n", len(results))
}

// unknownNames returns, sorted, the benchmarks of the current run that
// the baseline has no entry for.
func unknownNames(base benchcmp.Baseline, current map[string]float64) []string {
	var names []string
	for name := range current {
		if _, known := base.Benchmarks[name]; !known {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// compareNames checks that run and baseline cover exactly the same
// benchmark names, printing one line per divergence.
func compareNames(base benchcmp.Baseline, current map[string]float64) bool {
	ok := true
	var missing []string
	for name := range base.Benchmarks {
		if _, ran := current[name]; !ran {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("MISSING  %-45s in baseline, absent from this run\n", name)
		ok = false
	}
	for _, name := range unknownNames(base, current) {
		fmt.Printf("UNKNOWN  %-45s in this run, absent from the baseline\n", name)
		ok = false
	}
	return ok
}

// updateBaseline rewrites the baseline from the current measurements,
// preserving an existing file's threshold and note unless overridden.
func updateBaseline(path string, threshold float64, current map[string]float64) {
	base := benchcmp.Baseline{
		Note:      "Absolute ns/op from the machine that last ran -update; regenerate from CI-representative hardware with: go test -run '^$' -bench '^Benchmark(IncrementalEval|FullRecomputeEval|EngineObserver|ETCLayout|H2LLCandidates|Makespan|Move|Portfolio|SolverThroughput|ServiceThroughput)' -benchtime 0.2s -count 3 . | go run ./cmd/benchguard -update",
		Threshold: 0.25,
		FloorNs:   benchcmp.DefaultFloorNs,
	}
	if f, err := os.Open(path); err == nil {
		if prev, perr := benchcmp.ReadBaseline(f); perr == nil {
			base.Note, base.Threshold = prev.Note, prev.Threshold
			if prev.FloorNs > 0 {
				base.FloorNs = prev.FloorNs
			}
		}
		f.Close()
	}
	if threshold > 0 {
		base.Threshold = threshold
	}
	base.Benchmarks = make(map[string]benchcmp.Entry, len(current))
	for name, ns := range current {
		base.Benchmarks[name] = benchcmp.Entry{NsPerOp: ns}
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := benchcmp.WriteBaseline(f, base); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s with %d benchmarks (threshold %.0f%%)\n", path, len(base.Benchmarks), 100*base.Threshold)
}
