// Command benchguard gates CI on benchmark regressions: it parses
// `go test -bench` output (a file argument or stdin), compares every
// benchmark recorded in the checked-in baseline, and exits non-zero
// when one slowed beyond the threshold or disappeared from the run.
//
// Usage:
//
//	go test -run '^$' -bench '^Benchmark(IncrementalEval|FullRecomputeEval|ETCLayout|H2LLCandidates|Makespan|Move|Portfolio)' . | go run ./cmd/benchguard
//	go run ./cmd/benchguard -baseline BENCH_baseline.json bench.txt
//	go test -run '^$' -bench '...' . | go run ./cmd/benchguard -update
//
// -update rewrites the baseline from the current run (keeping the
// configured threshold) instead of comparing; commit the result when a
// deliberate change moves the numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gridsched/internal/benchcmp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")

	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or rewrite with -update)")
		threshold    = flag.Float64("threshold", 0, "relative slowdown that fails the guard (0 = baseline's own threshold, default 0.25)")
		update       = flag.Bool("update", false, "rewrite the baseline from the current run instead of comparing")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	current, err := benchcmp.Parse(in)
	if err != nil {
		log.Fatalf("parsing %s: %v", src, err)
	}

	if *update {
		updateBaseline(*baselinePath, *threshold, current)
		return
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		log.Fatalf("%v (run with -update to create it)", err)
	}
	base, err := benchcmp.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		log.Fatal(err)
	}

	results, ok := benchcmp.Compare(base, current, *threshold)
	for _, r := range results {
		switch {
		case r.Missing:
			fmt.Printf("MISSING  %-45s baseline %.4g ns/op, absent from this run\n", r.Name, r.Baseline)
		case r.Regressed:
			fmt.Printf("REGRESS  %-45s %.4g -> %.4g ns/op (%+.1f%%)\n", r.Name, r.Baseline, r.Current, 100*r.Delta)
		default:
			fmt.Printf("ok       %-45s %.4g -> %.4g ns/op (%+.1f%%)\n", r.Name, r.Baseline, r.Current, 100*r.Delta)
		}
	}
	if !ok {
		log.Fatalf("benchmark guard failed against %s", *baselinePath)
	}
	fmt.Printf("benchmark guard passed: %d benchmarks within threshold\n", len(results))
}

// updateBaseline rewrites the baseline from the current measurements,
// preserving an existing file's threshold and note unless overridden.
func updateBaseline(path string, threshold float64, current map[string]float64) {
	base := benchcmp.Baseline{
		Note:      "Absolute ns/op from the machine that last ran -update; regenerate from CI-representative hardware with: go test -run '^$' -bench '^Benchmark(IncrementalEval|FullRecomputeEval|ETCLayout|H2LLCandidates|Makespan|Move|Portfolio)' -benchtime 0.2s -count 3 . | go run ./cmd/benchguard -update",
		Threshold: 0.25,
		FloorNs:   benchcmp.DefaultFloorNs,
	}
	if f, err := os.Open(path); err == nil {
		if prev, perr := benchcmp.ReadBaseline(f); perr == nil {
			base.Note, base.Threshold = prev.Note, prev.Threshold
			if prev.FloorNs > 0 {
				base.FloorNs = prev.FloorNs
			}
		}
		f.Close()
	}
	if threshold > 0 {
		base.Threshold = threshold
	}
	base.Benchmarks = make(map[string]benchcmp.Entry, len(current))
	for name, ns := range current {
		base.Benchmarks[name] = benchcmp.Entry{NsPerOp: ns}
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := benchcmp.WriteBaseline(f, base); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s with %d benchmarks (threshold %.0f%%)\n", path, len(base.Benchmarks), 100*base.Threshold)
}
