// Command gridschedlint runs the project's static-analysis suite (see
// internal/lint) over the given package patterns and exits non-zero on
// any unsuppressed diagnostic:
//
//	go run ./cmd/gridschedlint ./...
//
// A diagnostic is suppressed by a justified escape hatch on or
// directly above the flagged line:
//
//	//lint:ignore <analyzer> <reason the invariant does not apply here>
//
// An empty reason is itself a diagnostic. Directives naming analyzers
// outside this suite (e.g. staticcheck codes) are left alone.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gridsched/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gridschedlint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	n, err := run(".", flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridschedlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// run executes the suite and prints findings; it returns how many
// diagnostics survived suppression.
func run(dir string, patterns []string, out io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Check(dir, patterns...)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	return len(findings), nil
}
