package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteCleanOnTree is the smoke the CI lint job relies on: the
// shipped suite reports nothing on the whole module. Skipped under
// -short because type-checking the full dependency closure takes a
// few seconds.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint smoke skipped in -short mode")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	var buf bytes.Buffer
	n, err := run(filepath.Dir(gomod), []string{"./..."}, &buf)
	if err != nil {
		t.Fatalf("lint run failed: %v", err)
	}
	if n != 0 {
		t.Errorf("gridschedlint reported %d findings on the tree:\n%s", n, buf.String())
	}
}
