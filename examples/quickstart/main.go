// Quickstart: generate a benchmark instance, run PA-CGA for one second,
// and compare the result against the Min-min constructive heuristic.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gridsched"
)

func main() {
	// The 12 paper benchmark instances are generated deterministically
	// by name: u_<consistency>_<task-het><machine-het>.<index>.
	inst, err := gridsched.GenerateInstance("u_i_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %s — %d tasks on %d machines (%s)\n",
		inst.Name, inst.T, inst.M, inst.Blazewicz())

	// A constructive baseline: Min-min builds a good schedule in
	// milliseconds and also seeds the GA population.
	minmin := gridsched.MinMin(inst)
	fmt.Printf("min-min makespan:  %.0f\n", minmin.Makespan())

	// PA-CGA with the paper's Table 1 parameters (16×16 population, L5
	// neighborhood, tpx crossover, H2LL local search, 3 threads).
	params := gridsched.DefaultParams()
	params.MaxDuration = time.Second
	params.Seed = 42

	res, err := gridsched.Run(inst, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pa-cga makespan:   %.0f  (%.1f%% better than Min-min)\n",
		res.BestFitness, (minmin.Makespan()-res.BestFitness)/minmin.Makespan()*100)
	fmt.Printf("evaluations:       %d in %v across %d threads\n",
		res.Evaluations, res.Duration.Round(time.Millisecond), len(res.PerThread))

	// The best schedule is a plain assignment vector plus per-machine
	// completion times; inspect the three busiest machines.
	fmt.Println("busiest machines:")
	order := res.Best.MachinesByCompletion(nil)
	for _, m := range order[len(order)-3:] {
		fmt.Printf("  machine %2d: %3d tasks, completion %.0f\n",
			m, res.Best.CountOn(m), res.Best.CT[m])
	}
}
