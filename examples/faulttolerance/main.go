// Fault tolerance study: how much of PA-CGA's optimization advantage
// survives the dynamic grid of §2.1? The example optimizes a schedule,
// then replays it on the discrete-event simulator under increasing
// levels of execution-time noise and machine failures, comparing against
// the myopic MCT schedule replayed under identical conditions (same
// seeds, same failure times).
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"gridsched"
)

const simRuns = 15

func main() {
	inst, err := gridsched.GenerateInstance("u_i_hihi.0")
	if err != nil {
		log.Fatal(err)
	}

	// Two plans for the same instance.
	mct, err := gridsched.HeuristicByName("mct")
	if err != nil {
		log.Fatal(err)
	}
	mctPlan := mct(inst)

	p := gridsched.DefaultParams()
	p.MaxDuration = 2 * time.Second
	p.Seed = 11
	res, err := gridsched.Run(inst, p)
	if err != nil {
		log.Fatal(err)
	}
	gaPlan := res.Best

	fmt.Printf("predicted makespan:  mct %.0f   pa-cga %.0f  (%.1f%% better)\n\n",
		mctPlan.Makespan(), gaPlan.Makespan(),
		(mctPlan.Makespan()-gaPlan.Makespan())/mctPlan.Makespan()*100)

	type scenario struct {
		name     string
		noise    float64
		mtbfFrac float64 // fraction of predicted makespan; 0 = no failures
	}
	scenarios := []scenario{
		{"exact ETC, stable grid", 0, 0},
		{"20% time noise", 0.2, 0},
		{"40% time noise", 0.4, 0},
		{"noise + rare failures", 0.2, 2.0},
		{"noise + frequent failures", 0.2, 0.5},
	}

	fmt.Printf("%-28s %14s %14s %10s\n", "scenario", "mct actual", "pa-cga actual", "edge kept")
	for _, sc := range scenarios {
		mctMean := replay(inst, mctPlan, sc.noise, sc.mtbfFrac)
		gaMean := replay(inst, gaPlan, sc.noise, sc.mtbfFrac)
		edge := (mctMean - gaMean) / mctMean * 100
		fmt.Printf("%-28s %14.0f %14.0f %9.1f%%\n", sc.name, mctMean, gaMean, edge)
	}
	fmt.Println("\n\"edge kept\" is PA-CGA's remaining advantage over MCT under each scenario.")
}

// replay simulates a plan under the scenario and returns the mean actual
// makespan over simRuns replications with fixed seeds, so both plans
// face identical noise draws and failure processes.
func replay(inst *gridsched.Instance, plan *gridsched.Schedule, noise, mtbfFrac float64) float64 {
	cfg := gridsched.SimConfig{NoiseSigma: noise}
	if mtbfFrac > 0 {
		cfg.MTBF = plan.Makespan() * mtbfFrac
		cfg.RepairTime = plan.Makespan() * 0.2
	}
	sum := 0.0
	for i := 0; i < simRuns; i++ {
		cfg.Seed = uint64(i) + 1
		res, err := gridsched.Simulate(inst, plan, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sum += res.Makespan
	}
	return sum / simRuns
}
