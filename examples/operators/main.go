// Operator study: a miniature version of the paper's Fig. 5 on a single
// instance. It compares the crossover operators (opx, tpx, ux) crossed
// with H2LL local-search budgets (0, 5, 10 iterations) over replicated
// runs, prints notched box plots, and tests the paper's headline claim —
// tpx/10 beats opx/5 — with the rank-sum test.
//
// Run with:
//
//	go run ./examples/operators
package main

import (
	"fmt"
	"log"

	"gridsched"
)

const (
	runs   = 15
	budget = 15000 // evaluations per run: deterministic and fast
)

func main() {
	inst, err := gridsched.GenerateInstance("u_i_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operator study on %s (%d runs x %d evaluations)\n\n", inst.Name, runs, budget)

	type config struct {
		label string
		cx    string
		ls    int
	}
	var configs []config
	for _, cx := range []string{"opx", "tpx", "ux"} {
		for _, ls := range []int{0, 5, 10} {
			configs = append(configs, config{fmt.Sprintf("%s/%d", cx, ls), cx, ls})
		}
	}

	samples := map[string][]float64{}
	for _, cfg := range configs {
		cx, err := gridsched.CrossoverByName(cfg.cx)
		if err != nil {
			log.Fatal(err)
		}
		ms := make([]float64, 0, runs)
		for run := 0; run < runs; run++ {
			p := gridsched.DefaultParams()
			p.Crossover = cx
			p.Local = gridsched.H2LL(cfg.ls)
			p.Seed = uint64(run) + 1
			p.MaxEvaluations = budget
			res, err := gridsched.Run(inst, p)
			if err != nil {
				log.Fatal(err)
			}
			ms = append(ms, res.BestFitness)
		}
		samples[cfg.label] = ms
	}

	// Box-plot summaries, best median first.
	fmt.Printf("  %-8s %14s %14s %14s\n", "config", "median", "mean", "notch width")
	for _, cfg := range configs {
		b, err := gridsched.NewBoxPlot(samples[cfg.label])
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, v := range samples[cfg.label] {
			mean += v
		}
		mean /= float64(len(samples[cfg.label]))
		fmt.Printf("  %-8s %14.0f %14.0f %14.0f\n", cfg.label, b.Median, mean, b.NotchHi-b.NotchLo)
	}

	// The paper's §4.2 claim, re-tested here: tpx/10 < opx/5.
	_, p, err := gridsched.RankSum(samples["tpx/10"], samples["opx/5"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrank-sum tpx/10 vs opx/5: p = %.4f", p)
	if p < 0.05 {
		fmt.Printf("  -> significant at 5%%\n")
	} else {
		fmt.Printf("  -> not significant at this (reduced) scale\n")
	}

	// Local search matters more than crossover choice: compare ls=0 vs
	// ls=10 pooled across crossovers.
	var ls0, ls10 []float64
	for _, cx := range []string{"opx", "tpx", "ux"} {
		ls0 = append(ls0, samples[cx+"/0"]...)
		ls10 = append(ls10, samples[cx+"/10"]...)
	}
	_, p2, err := gridsched.RankSum(ls10, ls0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank-sum H2LL 10 vs 0 iterations (pooled): p = %.2g\n", p2)
}
