// Rolling batch scheduling with machine churn: the dynamic-grid setting
// sketched in §2.1. Waves of tasks arrive at fixed intervals; each wave
// is scheduled as a batch on whatever machines are currently in the
// grid, with per-machine ready times carrying whatever backlog remains
// from earlier waves. Between waves, machines may drop out or join.
//
// The example contrasts two per-wave policies over the whole horizon:
//
//   - MCT: assign each task greedily (microseconds, myopic);
//   - PA-CGA: spend a short optimization budget on each batch.
//
// Run with:
//
//	go run ./examples/batchsim
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gridsched"
)

const (
	waves        = 6
	tasksPerWave = 160
	maxMachines  = 20
	// interArrival is the time between waves: long enough that healthy
	// nodes drain most of their backlog, short enough that slow nodes
	// carry debt into the next wave.
	interArrival = 150.0
)

// machine is a grid node: a speed and the absolute time at which it
// finishes its currently assigned work.
type machine struct {
	speed float64
	ready float64
}

// wave is one pre-generated arrival event, shared by all policies so
// every policy faces the identical scenario.
type wave struct {
	workloads []float64
	drop      int  // pseudo-index of a node to drop (-1: none)
	join      bool // a new node appears after the drop
	joinSpeed float64
}

func main() {
	r := rand.New(rand.NewSource(7))

	baseGrid := make([]machine, 14)
	for i := range baseGrid {
		baseGrid[i] = machine{speed: 40 + 360*r.Float64()}
	}
	trace := make([]wave, waves)
	for w := range trace {
		wl := make([]float64, tasksPerWave)
		for i := range wl {
			wl[i] = 200 + 2000*r.Float64()
		}
		drop := -1
		if w > 0 && r.Float64() < 0.5 {
			drop = r.Intn(1 << 20)
		}
		trace[w] = wave{workloads: wl, drop: drop, join: r.Float64() < 0.5, joinSpeed: 40 + 360*r.Float64()}
	}

	mct, err := gridsched.HeuristicByName("mct")
	if err != nil {
		log.Fatal(err)
	}
	type policy struct {
		name     string
		schedule func(inst *gridsched.Instance, seed uint64) (*gridsched.Schedule, error)
	}
	policies := []policy{
		{"mct", func(inst *gridsched.Instance, _ uint64) (*gridsched.Schedule, error) {
			return mct(inst), nil
		}},
		{"pa-cga", func(inst *gridsched.Instance, seed uint64) (*gridsched.Schedule, error) {
			p := gridsched.DefaultParams()
			p.GridW, p.GridH = 8, 8 // small population: short per-wave budget
			p.Threads = 2
			p.MaxDuration = 250 * time.Millisecond
			p.Seed = seed
			res, err := gridsched.Run(inst, p)
			if err != nil {
				return nil, err
			}
			return res.Best, nil
		}},
	}

	fmt.Printf("rolling batches: %d waves x %d tasks, inter-arrival %.0f s\n\n", waves, tasksPerWave, interArrival)
	for _, pol := range policies {
		nodes := append([]machine(nil), baseGrid...)
		clock := 0.0
		sumWaveMakespan := 0.0
		horizonEnd := 0.0

		for w, wv := range trace {
			// Churn happens while the previous wave runs.
			if wv.drop >= 0 && len(nodes) > 3 {
				d := wv.drop % len(nodes)
				nodes = append(nodes[:d], nodes[d+1:]...)
			}
			if wv.join && len(nodes) < maxMachines {
				nodes = append(nodes, machine{speed: wv.joinSpeed, ready: clock})
			}

			// Build the wave's instance. Ready times are relative to the
			// wave start: backlog remaining on each node.
			row := make([]float64, len(wv.workloads)*len(nodes))
			for t, wl := range wv.workloads {
				for m, nd := range nodes {
					row[t*len(nodes)+m] = wl / nd.speed
				}
			}
			inst, err := gridsched.NewInstanceFromMatrix(
				fmt.Sprintf("wave-%d", w), len(wv.workloads), len(nodes), row)
			if err != nil {
				log.Fatal(err)
			}
			ready := make([]float64, len(nodes))
			for m, nd := range nodes {
				if nd.ready > clock {
					ready[m] = nd.ready - clock
				}
			}
			if inst, err = inst.WithReady(ready); err != nil {
				log.Fatal(err)
			}

			s, err := pol.schedule(inst, uint64(w)+1)
			if err != nil {
				log.Fatal(err)
			}

			// Commit: node completion moves to wave start + completion.
			for m := range nodes {
				nodes[m].ready = clock + s.CT[m]
			}
			mk := s.Makespan()
			sumWaveMakespan += mk
			horizonEnd = clock + mk
			clock += interArrival
		}
		fmt.Printf("%-8s mean wave makespan %8.1f s   all work done at t=%8.1f s\n",
			pol.name, sumWaveMakespan/waves, horizonEnd)
	}
	fmt.Println("\nPA-CGA spends 250ms per wave; the gap vs MCT is the value of batch-level optimization under churn.")
}
