// Parameter-sweep scheduling: the motivating workload of §2.1. A
// Monte-Carlo study submits hundreds of near-independent simulation runs
// — the same code with different parameters — to a heterogeneous grid.
// Task workloads cluster around a nominal size with occasional heavy
// tails (a replication that converges slowly), machines span a 10×
// speed range.
//
// The example builds the ETC matrix from explicit workloads and machine
// speeds (rather than the opaque benchmark generator), schedules the
// sweep with Min-min, Sufferage and PA-CGA, and reports the campaign
// makespan each achieves.
//
// Run with:
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"gridsched"
)

const (
	sweepPoints = 600 // simulation runs in the campaign
	machines    = 24  // grid nodes
)

func main() {
	r := rand.New(rand.NewSource(2024))

	// Workload of each sweep point, in millions of instructions: nominal
	// 800 MI, log-normal-ish spread, and ~5% slow-converging outliers.
	workload := make([]float64, sweepPoints)
	for i := range workload {
		w := 800 * math.Exp(0.4*(r.Float64()*2-1))
		if r.Float64() < 0.05 {
			w *= 6 // heavy tail: a badly conditioned parameter set
		}
		workload[i] = w
	}

	// Node speeds in MIPS: three tiers of hardware with per-node jitter.
	speed := make([]float64, machines)
	for m := range speed {
		base := []float64{50, 120, 400}[m%3]
		speed[m] = base * (0.9 + 0.2*r.Float64())
	}

	// ETC[t][m] = workload[t] / speed[m]: the classic ETC construction.
	row := make([]float64, sweepPoints*machines)
	for t := 0; t < sweepPoints; t++ {
		for m := 0; m < machines; m++ {
			row[t*machines+m] = workload[t] / speed[m]
		}
	}
	inst, err := gridsched.NewInstanceFromMatrix("mc-sweep", sweepPoints, machines, row)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Monte-Carlo sweep: %d runs on %d nodes (%s)\n\n", sweepPoints, machines, inst.Blazewicz())

	// Constructive baselines.
	for _, name := range []string{"minmin", "sufferage", "mct"} {
		h, err := gridsched.HeuristicByName(name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s := h(inst)
		fmt.Printf("  %-10s makespan %9.1f s   (%v)\n", name, s.Makespan(), time.Since(start).Round(time.Microsecond))
	}

	// PA-CGA: worth its runtime when the campaign itself runs for hours.
	p := gridsched.DefaultParams()
	p.MaxDuration = 2 * time.Second
	p.Seed = 7
	start := time.Now()
	res, err := gridsched.Run(inst, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s makespan %9.1f s   (%v, %d evaluations)\n",
		"pa-cga", res.BestFitness, time.Since(start).Round(time.Millisecond), res.Evaluations)

	// How well is the tail absorbed? Report load balance statistics.
	var mean, worst float64
	for m := 0; m < machines; m++ {
		mean += res.Best.CT[m]
		if res.Best.CT[m] > worst {
			worst = res.Best.CT[m]
		}
	}
	mean /= machines
	fmt.Printf("\nload balance: worst node %.1f s vs mean %.1f s (imbalance %.1f%%)\n",
		worst, mean, (worst-mean)/mean*100)
}
