package gridsched

// Force-link every self-registering solver family, so the full
// registry is available through Solve/SolverNames even if a future
// refactor drops one of the facade's incidental named imports. Each
// package's init calls solver.Register.
import (
	_ "gridsched/internal/baselines"
	_ "gridsched/internal/core"
	_ "gridsched/internal/heuristics"
	_ "gridsched/internal/islands"
	_ "gridsched/internal/portfolio"
	_ "gridsched/internal/tabu"
)
