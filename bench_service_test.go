// Service-level throughput benchmark: full jobs through the scheduling
// service — submit, queue, worker dispatch, store-backed instance
// resolution, solve, retire — with a closed-loop in-flight window, so
// ns/op is the end-to-end cost per job the way a client experiences
// it. benchguard holds this number as the service throughput floor;
// jobs/s makes it readable directly in bench output.
package gridsched

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"gridsched/internal/instdb"
)

// BenchmarkServiceThroughput pushes Min-min jobs on a 64×8 stored
// instance through a 4-worker service, keeping a fixed in-flight
// window like the closed-loop harness (cmd/loadgen) does. The
// instance store removes generation noise: every job resolves its
// matrix with one map lookup.
func BenchmarkServiceThroughput(b *testing.B) {
	var buf bytes.Buffer
	if _, err := instdb.Build(&buf, []string{"u_i_hihi.0@64x8"}); err != nil {
		b.Fatal(err)
	}
	store, err := instdb.Decode(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(ServiceConfig{Workers: 4, QueueSize: 256, InstanceDB: store})
	defer svc.Close()

	spec := JobSpec{Solver: "minmin", Instance: "u_i_hihi.0@64x8"}
	ctx := context.Background()

	const inflight = 64
	sem := make(chan struct{}, inflight)
	errc := make(chan error, 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		j, err := svc.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		go func(id string) {
			defer func() { <-sem }()
			done, err := svc.Wait(ctx, id)
			if err == nil && done.State != JobDone {
				err = context.Canceled
			}
			if err != nil {
				select {
				case errc <- err:
				default:
				}
			}
		}(j.ID)
	}
	// Drain the window before stopping the clock: throughput counts
	// completed jobs, not enqueued ones.
	for i := 0; i < inflight; i++ {
		sem <- struct{}{}
	}
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "jobs/s")
	}
}

// BenchmarkServiceThroughputParallel is the sharded-core scaling probe:
// every benchmark goroutine is an independent closed-loop client doing
// synchronous submit→Wait round trips, so intake, dispatch and
// retirement contend from as many directions as GOMAXPROCS allows.
// Compare runs at -cpu 1,2,4,8: with the per-shard stores the jobs/s
// figure should grow with cores instead of flatlining on a global lock.
func BenchmarkServiceThroughputParallel(b *testing.B) {
	var buf bytes.Buffer
	if _, err := instdb.Build(&buf, []string{"u_i_hihi.0@64x8"}); err != nil {
		b.Fatal(err)
	}
	store, err := instdb.Decode(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	svc := NewService(ServiceConfig{Workers: workers, QueueSize: 1024, InstanceDB: store})
	defer svc.Close()

	spec := JobSpec{Solver: "minmin", Instance: "u_i_hihi.0@64x8"}
	ctx := context.Background()
	errc := make(chan error, 1)

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j, err := svc.Submit(spec)
			if err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
			done, err := svc.Wait(ctx, j.ID)
			if err == nil && done.State != JobDone {
				err = context.Canceled
			}
			if err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	})
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "jobs/s")
	}
}
